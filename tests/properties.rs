//! Property-based tests of the core invariants, using proptest. These
//! cover the mathematical contracts the paper's methodology relies on:
//! Φ's range and symmetry, the identity Φ(v,v)=coverage, transition-matrix
//! mass conservation, dendrogram monotonicity, cut-count monotonicity, and
//! cleaning passes never *reducing* coverage.

// The offline `proptest` stand-in expands `proptest! { .. }` to nothing,
// which makes the strategies and their imports look dead to the compiler
// even though the real proptest harness uses them all.
#![allow(unused_imports, dead_code)]

use fenrir::core::clean::{forward_fill, interpolate_nearest};
use fenrir::core::cluster::{Dendrogram, Linkage};
use fenrir::core::ids::{SiteId, SiteTable};
use fenrir::core::series::VectorSeries;
use fenrir::core::similarity::{phi, SimilarityMatrix, UnknownPolicy};
use fenrir::core::time::Timestamp;
use fenrir::core::transition::TransitionMatrix;
use fenrir::core::vector::{Catchment, RoutingVector};
use fenrir::core::weight::Weights;
use proptest::prelude::*;

const SITES: u16 = 5;

/// Strategy: an arbitrary catchment over `SITES` sites.
fn catchment() -> impl Strategy<Value = Catchment> {
    prop_oneof![
        4 => (0..SITES).prop_map(|s| Catchment::Site(SiteId(s))),
        1 => Just(Catchment::Err),
        1 => Just(Catchment::Other),
        2 => Just(Catchment::Unknown),
    ]
}

/// Strategy: a routing vector of length `n` at day `day`.
fn vector(n: usize, day: i64) -> impl Strategy<Value = RoutingVector> {
    prop::collection::vec(catchment(), n)
        .prop_map(move |cs| RoutingVector::from_catchments(Timestamp::from_days(day), cs))
}

/// Strategy: positive weights of length `n`.
fn weights(n: usize) -> impl Strategy<Value = Weights> {
    prop::collection::vec(0.1f64..100.0, n).prop_map(|v| Weights::from_values(v).expect("positive"))
}

proptest! {
    #[test]
    fn phi_is_in_unit_range_and_symmetric(
        (a, b, w) in (4usize..40).prop_flat_map(|n| (vector(n, 0), vector(n, 1), weights(n)))
    ) {
        for policy in [UnknownPolicy::Pessimistic, UnknownPolicy::KnownOnly] {
            let pab = phi(&a, &b, &w, policy);
            let pba = phi(&b, &a, &w, policy);
            prop_assert!((0.0..=1.0).contains(&pab), "Φ out of range: {pab}");
            prop_assert!((pab - pba).abs() < 1e-12, "asymmetric: {pab} vs {pba}");
        }
    }

    #[test]
    fn phi_self_similarity_equals_weighted_coverage(
        (a, w) in (4usize..40).prop_flat_map(|n| (vector(n, 0), weights(n)))
    ) {
        // Pessimistic Φ(v, v) = weighted fraction of known networks.
        let known_mass: f64 = a
            .iter()
            .zip(w.values())
            .filter(|(c, _)| c.is_known())
            .map(|(_, &wn)| wn)
            .sum();
        let expected = known_mass / w.total();
        let got = phi(&a, &a, &w, UnknownPolicy::Pessimistic);
        prop_assert!((got - expected).abs() < 1e-12);
        // Known-only Φ(v, v) is 1 whenever anything is known.
        let ko = phi(&a, &a, &w, UnknownPolicy::KnownOnly);
        if a.known_count() > 0 {
            prop_assert!((ko - 1.0).abs() < 1e-12);
        } else {
            prop_assert_eq!(ko, 0.0);
        }
    }

    #[test]
    fn pessimistic_phi_never_exceeds_known_only(
        (a, b, w) in (4usize..40).prop_flat_map(|n| (vector(n, 0), vector(n, 1), weights(n)))
    ) {
        // Dropping unknowns from the denominator can only help (when any
        // commonly-known networks exist).
        let pess = phi(&a, &b, &w, UnknownPolicy::Pessimistic);
        let known = phi(&a, &b, &w, UnknownPolicy::KnownOnly);
        let any_common = a
            .iter()
            .zip(b.iter())
            .any(|(x, y)| x.is_known() && y.is_known());
        if any_common {
            prop_assert!(pess <= known + 1e-12, "pess {pess} > known {known}");
        }
    }

    #[test]
    fn transition_matrix_conserves_mass(
        (a, b, w) in (4usize..40).prop_flat_map(|n| (vector(n, 0), vector(n, 1), weights(n)))
    ) {
        let t = TransitionMatrix::compute_weighted(&a, &b, SITES as usize, &w).expect("ok");
        prop_assert!((t.total() - w.total()).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&t.churn()));
        // Row sums equal the weighted initial-state aggregate.
        let agg = a.aggregate_weighted(SITES as usize, w.values());
        for s in 0..SITES as usize {
            let row: f64 = (0..t.states()).map(|j| t.get(s, j)).sum();
            prop_assert!((row - agg.per_site[s]).abs() < 1e-9);
        }
    }

    #[test]
    fn phi_relates_to_transition_diagonal(
        (a, b) in (4usize..40).prop_flat_map(|n| (vector(n, 0), vector(n, 1)))
    ) {
        // With uniform weights, pessimistic Φ = diagonal mass excluding the
        // unknown→unknown cell, divided by N.
        let n = a.len();
        let w = Weights::uniform(n);
        let t = TransitionMatrix::compute(&a, &b, SITES as usize).expect("ok");
        let unk = SITES as usize + 2;
        let diag_known: f64 = (0..t.states())
            .filter(|&s| s != unk)
            .map(|s| t.get(s, s))
            .sum();
        let p = phi(&a, &b, &w, UnknownPolicy::Pessimistic);
        prop_assert!((p - diag_known / n as f64).abs() < 1e-12);
    }

    #[test]
    fn dendrogram_is_monotone_and_cut_counts_decrease(
        raw in prop::collection::vec(0.0f64..1.0, 36)
    ) {
        // Build a symmetric similarity matrix from arbitrary upper-triangle
        // values (6x6).
        let n = 6;
        let mut v = vec![1.0; n * n];
        let mut it = raw.into_iter();
        for i in 0..n {
            for j in (i + 1)..n {
                let x = it.next().expect("enough");
                v[i * n + j] = x;
                v[j * n + i] = x;
            }
        }
        let sim = SimilarityMatrix::from_raw(n, v).expect("square");
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let d = Dendrogram::build(&sim, linkage).expect("ok");
            prop_assert_eq!(d.merges().len(), n - 1);
            for w in d.merges().windows(2) {
                prop_assert!(w[0].distance <= w[1].distance + 1e-12);
            }
            // Cluster count is non-increasing in the threshold.
            let mut prev = usize::MAX;
            for k in 0..=10 {
                let c = d.cluster_count(k as f64 / 10.0);
                prop_assert!(c <= prev);
                prev = c;
            }
            prop_assert_eq!(d.cluster_count(1.0), 1);
        }
    }

    #[test]
    fn extended_matrix_and_dendrogram_match_batch(
        columns in prop::collection::vec(prop::collection::vec(catchment(), 14), 4),
        split in 2usize..12
    ) {
        // Growing a condensed matrix (and its dendrogram) one observation
        // at a time must reproduce the from-scratch result bit for bit.
        let sites = SiteTable::from_names(["A", "B", "C", "D", "E"]);
        let mut series = VectorSeries::new(sites, 4);
        for t in 0..14 {
            let cs: Vec<Catchment> = columns.iter().map(|col| col[t]).collect();
            series
                .push(RoutingVector::from_catchments(Timestamp::from_days(t as i64), cs))
                .expect("ordered");
        }
        let w = Weights::uniform(4);
        let policy = UnknownPolicy::Pessimistic;
        let prefix = series.slice_time(
            Timestamp::from_days(0),
            Timestamp::from_days(split as i64 - 1),
        );
        let mut grown = SimilarityMatrix::compute(&prefix, &w, policy).expect("prefix matrix");
        grown.extend(&series, &w, policy).expect("extend");
        let fresh = SimilarityMatrix::compute(&series, &w, policy).expect("full matrix");
        prop_assert_eq!(&grown, &fresh);
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let mut tree = Dendrogram::build(
                &SimilarityMatrix::compute(&prefix, &w, policy).expect("prefix matrix"),
                linkage,
            )
            .expect("prefix tree");
            tree.extend(&grown).expect("extend tree");
            let batch = Dendrogram::build(&fresh, linkage).expect("batch tree");
            prop_assert_eq!(tree.merges(), batch.merges());
        }
    }

    #[test]
    fn cleaning_never_reduces_coverage(
        columns in prop::collection::vec(prop::collection::vec(catchment(), 12), 3)
    ) {
        // 3 networks observed 12 times.
        let sites = SiteTable::from_names(["A", "B", "C", "D", "E"]);
        let mut series = VectorSeries::new(sites, 3);
        for t in 0..12 {
            let cs: Vec<Catchment> = columns.iter().map(|col| col[t]).collect();
            series
                .push(RoutingVector::from_catchments(Timestamp::from_days(t as i64), cs))
                .expect("ordered");
        }
        for clean in [
            |s: &mut VectorSeries| interpolate_nearest(s, 3),
            |s: &mut VectorSeries| forward_fill(s, 3),
        ] {
            let mut copy = series.clone();
            let before = copy.mean_coverage();
            let stats = clean(&mut copy);
            prop_assert!(copy.mean_coverage() >= before - 1e-12);
            // Every cell that was known stays exactly as it was.
            for (orig, cleaned) in series.vectors().iter().zip(copy.vectors()) {
                for i in 0..3 {
                    if orig.get(i).is_known() {
                        prop_assert_eq!(orig.get(i), cleaned.get(i));
                    }
                }
            }
            // Accounting adds up.
            let unknown_before: usize =
                series.vectors().iter().map(|v| v.len() - v.known_count()).sum();
            let unknown_after: usize =
                copy.vectors().iter().map(|v| v.len() - v.known_count()).sum();
            prop_assert_eq!(unknown_before - unknown_after, stats.filled);
        }
    }

    #[test]
    fn interpolation_only_copies_neighbouring_values(
        column in prop::collection::vec(catchment(), 16)
    ) {
        let sites = SiteTable::from_names(["A", "B", "C", "D", "E"]);
        let mut series = VectorSeries::new(sites, 1);
        for (t, &c) in column.iter().enumerate() {
            series
                .push(RoutingVector::from_catchments(Timestamp::from_days(t as i64), vec![c]))
                .expect("ordered");
        }
        let mut filled = series.clone();
        interpolate_nearest(&mut filled, 3);
        for t in 0..column.len() {
            let c = filled.get(t).get(0);
            if column[t] == Catchment::Unknown && c != Catchment::Unknown {
                // The filled value must equal a known original within 3.
                let lo = t.saturating_sub(3);
                let hi = (t + 3).min(column.len() - 1);
                prop_assert!(
                    (lo..=hi).any(|u| column[u] == c),
                    "fabricated value {c:?} at {t}"
                );
            }
        }
    }
}

/// Seeded splitmix64 — keeps the incremental-equivalence checks runnable
/// even when the proptest harness is unavailable offline.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn seeded_series(seed: u64, observations: usize, networks: usize) -> VectorSeries {
    let sites = SiteTable::from_names(["A", "B", "C", "D", "E"]);
    let mut series = VectorSeries::new(sites, networks);
    let mut mix = Mix(seed);
    for t in 0..observations {
        let cs: Vec<Catchment> = (0..networks)
            .map(|_| match mix.pick(8) {
                0 => Catchment::Unknown,
                1 => Catchment::Err,
                2 => Catchment::Other,
                _ => Catchment::Site(SiteId(mix.pick(SITES as usize) as u16)),
            })
            .collect();
        series
            .push(RoutingVector::from_catchments(
                Timestamp::from_days(t as i64),
                cs,
            ))
            .expect("ordered");
    }
    series
}

/// The condensed matrix grown by `extend` must equal a fresh `compute`
/// over the full series — bit for bit, across random series and split
/// points. This is the core daily-operations contract: appending a sweep
/// never perturbs history.
#[test]
fn extend_grown_matrix_equals_fresh_compute_over_random_series() {
    for seed in 0..16u64 {
        let mut mix = Mix(seed.wrapping_mul(0x51AB).wrapping_add(3));
        let observations = 6 + mix.pick(10);
        let networks = 3 + mix.pick(9);
        let series = seeded_series(seed * 97 + 11, observations, networks);
        let w = Weights::uniform(networks);
        for policy in [UnknownPolicy::Pessimistic, UnknownPolicy::KnownOnly] {
            let fresh = SimilarityMatrix::compute(&series, &w, policy).expect("full");
            // Grow from every split point, including one-at-a-time.
            for split in 1..observations {
                let prefix = series.slice_time(
                    Timestamp::from_days(0),
                    Timestamp::from_days(split as i64 - 1),
                );
                let mut grown = SimilarityMatrix::compute(&prefix, &w, policy).expect("prefix");
                grown.extend(&series, &w, policy).expect("extend");
                assert_eq!(grown, fresh, "seed {seed} split {split} {policy:?}");
            }
        }
    }
}

/// A dendrogram extended with newly-appended observations must reproduce
/// the batch build over the grown matrix exactly, including tie breaks.
#[test]
fn extended_dendrogram_equals_batch_build_over_random_series() {
    for seed in 0..12u64 {
        let mut mix = Mix(seed.wrapping_mul(0xC0FE).wrapping_add(7));
        let observations = 6 + mix.pick(8);
        let networks = 3 + mix.pick(6);
        let series = seeded_series(seed * 131 + 5, observations, networks);
        let w = Weights::uniform(networks);
        let policy = UnknownPolicy::Pessimistic;
        let fresh = SimilarityMatrix::compute(&series, &w, policy).expect("full");
        let split = 2 + mix.pick(observations - 2);
        let prefix = series.slice_time(
            Timestamp::from_days(0),
            Timestamp::from_days(split as i64 - 1),
        );
        let prefix_matrix = SimilarityMatrix::compute(&prefix, &w, policy).expect("prefix");
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let mut tree = Dendrogram::build(&prefix_matrix, linkage).expect("prefix tree");
            tree.extend(&fresh).expect("extend tree");
            let batch = Dendrogram::build(&fresh, linkage).expect("batch tree");
            assert_eq!(
                tree.merges(),
                batch.merges(),
                "seed {seed} split {split} {linkage:?}"
            );
        }
    }
}
