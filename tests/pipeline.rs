//! End-to-end integration: the full Table 1 pipeline across all crates —
//! simulate an Internet, run a measurement campaign through real packets,
//! clean, compare, cluster, quantify, and validate against ground truth.

use fenrir::core::clean::interpolate_nearest;
use fenrir::core::cluster::{AdaptiveThreshold, Linkage};
use fenrir::core::detect::ChangeDetector;
use fenrir::core::modes::ModeAnalysis;
use fenrir::core::similarity::{SimilarityMatrix, UnknownPolicy};
use fenrir::core::time::Timestamp;
use fenrir::core::transition::TransitionMatrix;
use fenrir::core::weight::Weights;
use fenrir::measure::atlas::AtlasCampaign;
use fenrir::netsim::anycast::AnycastService;
use fenrir::netsim::events::Scenario;
use fenrir::netsim::geo::cities;
use fenrir::netsim::topology::{Tier, TopologyBuilder};

/// One story, asserted at every stage: a three-site anycast service with a
/// maintenance drain in the middle of the observation window.
#[test]
fn pipeline_rediscovers_a_drain() {
    // Collect.
    let topo = TopologyBuilder {
        transit: 3,
        regional: 9,
        stubs: 72,
        blocks_per_stub: 2,
        seed: 0xE2E,
        ..Default::default()
    }
    .build();
    let regionals = topo.tier_members(Tier::Regional);
    let mut service = AnycastService::new("e2e-root");
    service.add_site("LAX", regionals[0], cities::LAX);
    service.add_site("AMS", regionals[1], cities::AMS);
    service.add_site("NRT", regionals[2], cities::NRT);
    let mut scenario = Scenario::new();
    let drain_from = Timestamp::from_days(14);
    let drain_to = Timestamp::from_days(18);
    scenario.drain(0, drain_from.as_secs(), drain_to.as_secs(), "neteng");
    let times: Vec<Timestamp> = (0..30).map(Timestamp::from_days).collect();
    let campaign = AtlasCampaign {
        vantage_points: 90,
        loss_prob: 0.05,
        ..Default::default()
    };
    let mut series = campaign.run(&topo, &service, &scenario, &times).series;
    assert_eq!(series.len(), 30);
    let raw_coverage = series.mean_coverage();
    assert!(raw_coverage < 1.0, "losses leave gaps");

    // Clean.
    let stats = interpolate_nearest(&mut series, 3);
    assert!(stats.filled > 0);
    assert!(series.mean_coverage() > raw_coverage);

    // Compare.
    let w = Weights::uniform(series.networks());
    let sim = SimilarityMatrix::compute_parallel(&series, &w, UnknownPolicy::KnownOnly, 4)
        .expect("similarity");
    // Days on the same side of the drain are near-identical; across is not.
    assert!(sim.get(0, 5) > 0.98);
    assert!(sim.get(20, 25) > 0.98);
    assert!(sim.get(5, 15) < sim.get(0, 5));

    // Cluster: the drain days form their own mode, and the pre-drain mode
    // recurs after the drain.
    let modes = ModeAnalysis::discover(&sim, &times, Linkage::Single, AdaptiveThreshold::default())
        .expect("modes");
    assert_eq!(
        modes.len(),
        2,
        "baseline mode + drain mode: {}",
        modes.summary()
    );
    let baseline = &modes.modes[0];
    assert!(baseline.recurs(), "baseline mode returns after the drain");
    let drain_mode = &modes.modes[1];
    assert_eq!(drain_mode.intervals.len(), 1);
    let iv = drain_mode.intervals[0];
    assert_eq!(times[iv.start], drain_from);
    assert_eq!(times[iv.end], Timestamp::from_days(17));

    // Quantify: the transition matrix at the drain boundary localises the
    // movement out of LAX.
    let i = 14;
    let t = TransitionMatrix::compute(series.get(i - 1), series.get(i), series.sites().len())
        .expect("transition");
    assert!(t.churn() > 0.0);
    let flows = t.top_flows(series.sites(), 5);
    assert!(
        flows
            .iter()
            .all(|f| f.from == "LAX" || f.to == "LAX" || f.weight <= 2.0),
        "dominant flows leave LAX: {flows:?}"
    );

    // Detect: exactly two change events (drain start, drain end).
    let detector = ChangeDetector {
        policy: UnknownPolicy::KnownOnly,
        ..Default::default()
    };
    let events = detector.detect(&series, &w);
    assert_eq!(events.len(), 2, "onset + recovery: {events:?}");
    assert_eq!(events[0].time, drain_from);
    assert_eq!(events[1].time, drain_to);
}

/// The same pipeline through the dataset layer: serialize the collected
/// series to both formats and analyse the round-tripped copy.
#[test]
fn pipeline_survives_serialization() {
    let topo = TopologyBuilder {
        transit: 3,
        regional: 6,
        stubs: 30,
        blocks_per_stub: 1,
        seed: 0x5E1A,
        ..Default::default()
    }
    .build();
    let regionals = topo.tier_members(Tier::Regional);
    let mut service = AnycastService::new("ser-root");
    service.add_site("LAX", regionals[0], cities::LAX);
    service.add_site("AMS", regionals[1], cities::AMS);
    let times: Vec<Timestamp> = (0..8).map(Timestamp::from_days).collect();
    let campaign = AtlasCampaign {
        vantage_points: 40,
        loss_prob: 0.1,
        ..Default::default()
    };
    let run = campaign.run(&topo, &service, &Scenario::new(), &times);
    let labels: Vec<String> = (0..run.series.networks())
        .map(|i| format!("vp{i}"))
        .collect();

    let jsonl = fenrir::data::io::to_jsonl(&run.series, &labels).expect("jsonl");
    let (back, back_labels) = fenrir::data::io::from_jsonl(&jsonl).expect("parse");
    assert_eq!(back_labels, labels);

    let w = Weights::uniform(run.series.networks());
    let sim_orig =
        SimilarityMatrix::compute(&run.series, &w, UnknownPolicy::Pessimistic).expect("ok");
    let sim_back = SimilarityMatrix::compute(&back, &w, UnknownPolicy::Pessimistic).expect("ok");
    assert_eq!(
        sim_orig.raw(),
        sim_back.raw(),
        "analysis identical after round trip"
    );

    // CSV drops nothing that matters either (unknowns are implicit).
    let csv = fenrir::data::io::to_csv(&run.series, &labels).expect("csv");
    let (back_csv, _) = fenrir::data::io::from_csv(&csv).expect("parse");
    let sim_csv = SimilarityMatrix::compute(&back_csv, &w, UnknownPolicy::Pessimistic).expect("ok");
    assert_eq!(sim_orig.raw(), sim_csv.raw());
}
